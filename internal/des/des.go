// Package des implements a deterministic discrete-event simulation engine.
//
// It is the substrate that replaces ns-2 in this reproduction: every
// simulated component (traffic source, regulator, multiplexer, link, router,
// overlay host) schedules callbacks on a single Engine. Time is an int64
// nanosecond count, so runs are bit-for-bit reproducible — no floating-point
// clock drift — and events that fire at the same instant are executed in
// scheduling order (a monotone sequence number breaks ties).
//
// The event queue is a hierarchical timing wheel (see wheel.go) with an
// overflow heap for events beyond the wheel horizon, backed by an intrusive
// free list of event records. Steady-state scheduling allocates nothing:
// a fired or reaped event's record is recycled for the next Schedule call.
// Components that fire on every duty cycle should store their callback once
// and re-schedule it (or use Ticker / ScheduleEvery), so the hot path does
// not capture a fresh closure per cycle either.
package des

import "fmt"

// Time is a point in simulated time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of simulated time, in nanoseconds.
type Duration = Time

// Common durations, mirroring package time for readability.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds converts a floating-point number of seconds to a Time.
func Seconds(s float64) Time { return Time(s * float64(Second)) }

// Millis converts a floating-point number of milliseconds to a Time.
func Millis(ms float64) Time { return Time(ms * float64(Millisecond)) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis reports t as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String formats the time in milliseconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fms", t.Millis()) }

// event is the pooled queue record. Records are recycled through the
// engine's free list after firing or reaping; gen distinguishes the
// incarnations so stale handles become harmless no-ops.
//
// Events fire in (at, prio, seq) order. prio is the event's scheduling
// time: Schedule stamps it with Now, which is non-decreasing in seq, so
// for a purely local engine the order is identical to the seed's (at,
// seq). Its purpose is cross-shard merging (shard.go): a message posted at
// sender time t but materialised in the destination engine at a later
// epoch barrier carries prio = t, which restores exactly the tie-break a
// sequential run would have given an event scheduled at t — without it,
// systematic same-timestamp ties (burst cascades phase-locked on the
// serialisation grid) would resolve by drain order instead of send order.
type event struct {
	at       Time
	prio     Time
	seq      uint64
	fn       func()
	next     *event // bucket chain / free-list link
	gen      uint32
	canceled bool
	// kind/arg identify the callback for snapshot/restore (snapshot.go):
	// kind names the registered callback family, arg its per-engine
	// component slot. KindNone marks events that cannot rehydrate —
	// snapshotting an engine holding one is an error.
	kind uint16
	arg  uint32
}

// eventLess is the engine's total firing order (seq is unique, so the
// order is strict).
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.seq < b.seq
}

// Event is a cancelable handle to a scheduled callback. It is a small
// value (copyable, comparable); the zero Event is valid and never pending.
// A handle goes stale once its event fires or its canceled record is
// reaped — Cancel and the accessors treat stale handles as no-ops.
type Event struct {
	ev  *event
	gen uint32
}

// Pending reports whether the event is still scheduled to fire.
func (h Event) Pending() bool {
	return h.ev != nil && h.ev.gen == h.gen && !h.ev.canceled
}

// At reports when the event will fire, or 0 if the handle is stale or
// canceled.
func (h Event) At() Time {
	if h.Pending() {
		return h.ev.at
	}
	return 0
}

// Engine is a single-threaded discrete-event executor. The zero value is
// ready to use. Engines are not safe for concurrent use; the simulation
// model is strictly sequential, which is what makes it deterministic.
// (Run one engine per goroutine for parallel sweeps.)
type Engine struct {
	now      Time
	seq      uint64
	executed uint64
	running  bool
	pending  int

	// Timing-wheel state (wheel.go). ready is the sorted run of events at
	// or before curTick; readyHead is its consumed prefix.
	curTick   int64
	ready     []*event
	readyHead int
	levels    [numLevels]wheelLevel
	overflow  overflowHeap

	free     *event // recycled event records
	poolSize int    // total records ever allocated (diagnostics)
}

// New returns a fresh engine at time zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Executed reports how many events have run so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending reports how many live (scheduled, not canceled) events are
// waiting in the queue.
func (e *Engine) Pending() int { return e.pending }

// PoolSize reports how many event records the engine has ever allocated —
// the steady-state high-water mark of concurrently queued events.
func (e *Engine) PoolSize() int { return e.poolSize }

func (e *Engine) alloc() *event {
	ev := e.free
	if ev == nil {
		ev = &event{}
		e.poolSize++
	} else {
		e.free = ev.next
	}
	ev.next = nil
	ev.canceled = false
	ev.kind = KindNone
	ev.arg = 0
	return ev
}

// release recycles a record after it fired or its cancellation was reaped.
// Bumping gen invalidates every outstanding handle to this incarnation.
func (e *Engine) release(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.next = e.free
	e.free = ev
}

// Schedule enqueues fn to run at absolute time at. Scheduling in the past
// (before Now) panics: it always indicates a model bug, and silently
// reordering time would destroy the causality the simulation depends on.
func (e *Engine) Schedule(at Time, fn func()) Event {
	return e.SchedulePrio(at, e.now, fn)
}

// SchedulePrio is Schedule with an explicit tie-break priority in place of
// the default Now stamp: among events firing at the same instant, lower
// prio fires first (seq still breaks exact prio ties). The shard
// coordinator uses it to materialise cross-shard messages under their
// sender-side scheduling time; local simulation code should use Schedule.
func (e *Engine) SchedulePrio(at, prio Time, fn func()) Event {
	return e.SchedulePrioKind(at, prio, KindNone, 0, fn)
}

// SchedulePrioKind is SchedulePrio with a callback-kind tag (snapshot.go):
// kind names the registered callback family and arg its component slot, so
// the event can be serialized and rehydrated on restore. Components whose
// events must survive a checkpoint schedule through the *Kind variants;
// everything else keeps the untagged forms and is rejected at snapshot
// time.
func (e *Engine) SchedulePrioKind(at, prio Time, kind uint16, arg uint32, fn func()) Event {
	if at < e.now {
		panic(fmt.Sprintf("des: scheduling at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("des: scheduling nil func")
	}
	ev := e.alloc()
	ev.at = at
	ev.prio = prio
	ev.seq = e.seq
	ev.fn = fn
	ev.kind = kind
	ev.arg = arg
	e.seq++
	e.pending++
	e.insert(ev)
	return Event{ev: ev, gen: ev.gen}
}

// ScheduleIn enqueues fn to run d nanoseconds after Now. Negative d panics.
func (e *Engine) ScheduleIn(d Duration, fn func()) Event {
	return e.Schedule(e.now+d, fn)
}

// ScheduleKind is Schedule with a callback-kind tag (see SchedulePrioKind).
func (e *Engine) ScheduleKind(at Time, kind uint16, arg uint32, fn func()) Event {
	return e.SchedulePrioKind(at, e.now, kind, arg, fn)
}

// ScheduleInKind is ScheduleIn with a callback-kind tag.
func (e *Engine) ScheduleInKind(d Duration, kind uint16, arg uint32, fn func()) Event {
	return e.SchedulePrioKind(e.now+d, e.now, kind, arg, fn)
}

// Cancel prevents a scheduled event from firing. Canceling a stale or zero
// handle (already fired, already canceled and reaped, or never scheduled)
// is a no-op. Cancellation is lazy: the record stays in the wheel until its
// bucket expires, but it no longer counts as Pending and its callback is
// released immediately.
func (e *Engine) Cancel(h Event) {
	if !h.Pending() {
		return
	}
	h.ev.canceled = true
	h.ev.fn = nil
	e.pending--
}

// Step executes the single next event. It returns false when the queue is
// empty.
func (e *Engine) Step() bool {
	ev := e.next()
	if ev == nil {
		return false
	}
	e.exec(ev)
	return true
}

// exec fires an event already consumed from the ready run.
func (e *Engine) exec(ev *event) {
	e.now = ev.at
	e.executed++
	e.pending--
	fn := ev.fn
	e.release(ev)
	fn()
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	e.running = true
	for e.running && e.Step() {
	}
	e.running = false
}

// RunUntil executes events with firing time <= deadline, then advances the
// clock to exactly deadline. Events scheduled beyond the deadline remain
// queued.
func (e *Engine) RunUntil(deadline Time) {
	e.running = true
	for e.running {
		nxt := e.peek()
		if nxt == nil || nxt.at > deadline {
			break
		}
		// Consume the peeked event directly rather than via Step, which
		// would redo the ready-run fill.
		e.ready[e.readyHead] = nil
		e.readyHead++
		e.exec(nxt)
	}
	e.running = false
	if e.now < deadline {
		e.now = deadline
	}
}

// Stop halts Run/RunUntil after the current event returns. It is intended
// to be called from inside an event callback (e.g. when a measurement
// target has been reached).
func (e *Engine) Stop() { e.running = false }
