package des

import (
	"sort"
	"testing"
)

// FuzzMailboxDrain drives the mailbox→pending→release machinery with
// randomized record batches and randomized epoch windows, and checks the
// delivered order per destination against the strict (at, lamport,
// srcShard, seq) total order applied directly to the injected records —
// the determinism oracle the whole sharded engine rests on. Records are
// injected into the outboxes directly (bypassing Post's lookahead
// validation) so the fuzzer controls every key field, including exact
// (at, lamport) ties across sources, and windows are cut at arbitrary
// points so ties can land in different release batches.
func FuzzMailboxDrain(f *testing.F) {
	f.Add([]byte{0, 1, 3, 1, 1, 2, 3, 1, 2, 0, 3, 1, 4, 9})
	f.Add([]byte{0, 1, 1, 0, 1, 0, 1, 0, 0, 2, 1, 0, 1})
	f.Add([]byte{2, 0, 15, 131, 1, 2, 15, 131, 0, 1, 15, 3, 7, 7, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		const nsh = 3
		engines := make([]*Engine, nsh)
		for i := range engines {
			engines[i] = New()
		}
		la := make([][]Duration, nsh)
		for i := range la {
			la[i] = make([]Duration, nsh)
			for j := range la[i] {
				if i != j {
					la[i][j] = 1
				}
			}
		}
		c := NewCoordinatorMatrix[int](engines, la)
		type delivery struct{ dst, idx int }
		var log []delivery
		c.OnDeliver(func(dst, idx int) { log = append(log, delivery{dst, idx}) })

		// Inject: 4 bytes per record → (src, dst, at, lamport|kind). seq
		// stays per-src monotone, as post() guarantees. The high bit of the
		// last byte selects the closure path so both record kinds interleave
		// under one order.
		dsts := make([]int, 0, 64)
		recs := make([]rec[int], 0, 64)
		i := 0
		for ; i+3 < len(data) && len(recs) < 64; i += 4 {
			src := int(data[i]) % nsh
			dst := int(data[i+1]) % nsh
			if src == dst {
				continue
			}
			at := Time(1 + int(data[i+2])%16)
			c.seq[src]++
			r := rec[int]{
				at:      at,
				lamport: Time(int(data[i+3]&0x7f)) % at,
				seq:     c.seq[src],
				src:     int32(src),
			}
			idx := len(recs)
			if data[i+3]&0x80 != 0 {
				r.kind = recClosure
				d := dst
				r.fn = func() { log = append(log, delivery{d, idx}) }
			} else {
				r.kind = recPayload
				r.payload = idx
			}
			c.outbox[src][dst] = append(c.outbox[src][dst], r)
			dsts = append(dsts, dst)
			recs = append(recs, r)
		}
		c.drain()

		// Release in randomized increasing windows, draining between them
		// as the barrier loop would (a no-op on empty mailboxes, but it
		// must not disturb the pending order).
		bound := Time(0)
		for ; i < len(data); i++ {
			bound += Time(1 + int(data[i])%8)
			for d := 0; d < nsh; d++ {
				c.release(d, bound)
				engines[d].RunBefore(bound)
			}
			c.drain()
		}
		const final = Time(64)
		for d := 0; d < nsh; d++ {
			c.release(d, final)
			engines[d].RunBefore(final)
		}

		// Oracle: each destination must see exactly its records, in the
		// strict total order, regardless of how the windows were cut.
		for d := 0; d < nsh; d++ {
			var want []int // record indices bound for d
			for idx, dst := range dsts {
				if dst == d {
					want = append(want, idx)
				}
			}
			sort.SliceStable(want, func(a, b int) bool {
				return recLess(&recs[want[a]], &recs[want[b]])
			})
			var got []int
			for _, dl := range log {
				if dl.dst == d {
					got = append(got, dl.idx)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("dst %d delivered %d records, injected %d", d, len(got), len(want))
			}
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("dst %d position %d: delivered record %d, oracle says %d\n got %v\nwant %v",
						d, k, got[k], want[k], got, want)
				}
			}
		}
	})
}
