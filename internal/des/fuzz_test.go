package des

import (
	"encoding/binary"
	"testing"
)

// FuzzWheelCursorBehind fuzzes the wheel's trickiest path: merge-inserting
// into the sorted ready run when the cursor has jumped ahead of the clock
// (after RunUntil toward a far event) and new events land at or behind
// curTick. The oracle is the engine's documented contract: across the whole
// run, live events fire in strict (at, schedule-order) order, canceled
// events never fire, and nothing is lost.
//
// Each input byte stream decodes to a little op program:
//
//	op 0: Schedule at now + small delta   (bottom wheel levels / ready run)
//	op 1: Schedule at now + scaled delta  (coarse levels, overflow heap)
//	op 2: RunUntil(now + delta)           (jumps the cursor; behind-cursor
//	                                       schedules follow)
//	op 3: Cancel a previously scheduled event
func FuzzWheelCursorBehind(f *testing.F) {
	le := binary.LittleEndian
	mk := func(ops ...uint64) []byte {
		out := make([]byte, 0, len(ops)*3)
		for _, op := range ops {
			var b [3]byte
			b[0] = byte(op)
			le.PutUint16(b[1:], uint16(op>>8))
			out = append(out, b[:]...)
		}
		return out
	}
	// Seeds: same-tick bursts, a RunUntil jump followed by behind-cursor
	// schedules, coarse-level and overflow-horizon distances, cancels.
	f.Add(mk(0x0000_00, 0x0000_00, 0x0100_02, 0x0003_00, 0x0002_00))
	f.Add(mk(0xffff_01, 0x0010_02, 0x0001_00, 0x0001_00, 0x0000_03))
	f.Add(mk(0xffff_01, 0xffff_01, 0xffff_02, 0x0000_00, 0x0002_00, 0x0004_03))
	f.Add(mk(0x8000_02, 0x0001_00, 0x0003_00, 0x0001_03, 0x4000_02))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 3*512 {
			return // bound the program length
		}
		eng := New()
		type rec struct {
			at       Time
			order    int // schedule order, the tie-break oracle
			canceled bool
			fired    bool
			h        Event
		}
		var scheduled []*rec
		var fired []*rec
		for i := 0; i+2 < len(data); i += 3 {
			op := data[i] & 3
			arg := Time(le.Uint16(data[i+1 : i+3]))
			switch op {
			case 0:
				r := &rec{order: len(scheduled)}
				r.at = eng.Now() + arg
				r.h = eng.Schedule(r.at, func() {
					r.fired = true
					fired = append(fired, r)
				})
				scheduled = append(scheduled, r)
			case 1:
				// Scale into coarse levels and (for large args) past the
				// wheel horizon so overflow migration is exercised too.
				r := &rec{order: len(scheduled)}
				r.at = eng.Now() + arg<<23
				r.h = eng.Schedule(r.at, func() {
					r.fired = true
					fired = append(fired, r)
				})
				scheduled = append(scheduled, r)
			case 2:
				eng.RunUntil(eng.Now() + arg<<10)
			case 3:
				if len(scheduled) > 0 {
					r := scheduled[int(arg)%len(scheduled)]
					if !r.fired && !r.canceled {
						eng.Cancel(r.h)
						r.canceled = true
					}
				}
			}
		}
		eng.Run()

		// Oracle 1: everything live fired, nothing canceled fired.
		nLive := 0
		for _, r := range scheduled {
			if r.canceled {
				if r.fired {
					t.Fatalf("canceled event (at %v, order %d) fired", r.at, r.order)
				}
				continue
			}
			nLive++
			if !r.fired {
				t.Fatalf("live event (at %v, order %d) never fired", r.at, r.order)
			}
		}
		if len(fired) != nLive {
			t.Fatalf("fired %d events, scheduled %d live", len(fired), nLive)
		}
		// Oracle 2: global firing order is strict (at, schedule order).
		// Schedule panics on at < now, so every later-scheduled event has
		// at >= all previously fired ats and the global order is total.
		for i := 1; i < len(fired); i++ {
			a, b := fired[i-1], fired[i]
			if a.at > b.at || (a.at == b.at && a.order > b.order) {
				t.Fatalf("firing order violated at step %d: (at=%v order=%d) before (at=%v order=%d)",
					i, a.at, a.order, b.at, b.order)
			}
		}
		if eng.Pending() != 0 {
			t.Fatalf("engine still pending %d after Run", eng.Pending())
		}
	})
}
