package des

// Conservative-parallel execution: a Coordinator advances N independent
// Engines (shards) in lock-step epochs whose width is the model's
// conservative lookahead — the minimum simulated delay any cross-shard
// interaction can have. Within an epoch every shard executes only events
// that fire strictly before the epoch's end, so no shard can observe an
// effect another shard has not yet produced: a cross-shard message sent at
// local time t arrives at t + d with d >= lookahead >= the remaining epoch
// width, i.e. always in a later epoch, and the coordinator moves it into
// the destination engine at the epoch barrier before that epoch begins.
//
// Determinism contract. A sharded run must be bit-stable for a fixed shard
// count regardless of OS scheduling. Three mechanisms guarantee it:
//
//  1. Each shard's engine is strictly sequential and only its own worker
//     goroutine touches it during an epoch.
//  2. Cross-shard messages travel through per-(src, dst) mailboxes that
//     only the source shard appends to; at the barrier the coordinator
//     merges a destination's inbound messages under the explicit total
//     order (at, lamport, srcShard, seq) — arrival time, the sender's
//     clock at send, the sending shard, and a per-sender monotone counter
//     — and schedules them in that order, so destination-engine tie-breaks
//     (its internal seq) are independent of thread interleaving.
//  3. Barrier callbacks (the session control plane) run on the
//     coordinator goroutine while every engine is quiesced at exactly the
//     barrier time, before any same-time events execute — mirroring the
//     sequential engine, where control events are scheduled at build time
//     and therefore win every same-timestamp tie.
//
// Epochs are demand-driven: each epoch starts at the global minimum next
// event time, so idle stretches (drain tails, sparse scenarios) cost one
// barrier instead of thousands.

import (
	"fmt"
	"sort"
)

// NextAt reports the firing time of the earliest pending event, or false
// when the queue is empty.
func (e *Engine) NextAt() (Time, bool) {
	ev := e.peek()
	if ev == nil {
		return 0, false
	}
	return ev.at, true
}

// RunBefore executes every event with firing time strictly before bound,
// then advances the clock to exactly bound (never backward). It is the
// epoch step of conservative-parallel execution: unlike RunUntil it leaves
// events at the bound itself unfired, so a barrier action at the bound
// runs before same-time events, exactly as a build-time-scheduled event
// would in a sequential run.
func (e *Engine) RunBefore(bound Time) {
	e.running = true
	for e.running {
		nxt := e.peek()
		if nxt == nil || nxt.at >= bound {
			break
		}
		e.ready[e.readyHead] = nil
		e.readyHead++
		e.exec(nxt)
	}
	e.running = false
	if e.now < bound {
		e.now = bound
	}
}

// shardMsg is one cross-shard event in flight between epochs. Its fields
// are the explicit merge key; fn runs on the destination engine at `at`.
type shardMsg struct {
	at      Time   // delivery time on the destination engine
	lamport Time   // the sender's clock when the message was posted
	src     int    // sending shard
	seq     uint64 // per-sender monotone counter
	fn      func()
}

// msgLess is the total order cross-shard messages merge under. seq is
// unique per src, so the order is strict.
func msgLess(a, b shardMsg) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.lamport != b.lamport {
		return a.lamport < b.lamport
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// Coordinator drives a set of shard engines through conservative epochs.
// Build it with NewCoordinator, register any barrier actions, then call
// Run once. Coordinators are single-use.
type Coordinator struct {
	engines   []*Engine
	lookahead Time

	outbox [][][]shardMsg // [src][dst] mailboxes, appended by src's worker
	seq    []uint64       // per-src message counter
	merge  []shardMsg     // reusable barrier merge buffer

	barriers  []Time     // ascending, distinct quiesce points
	onBarrier func(Time) // runs with every engine quiesced at the time
	active    []int      // reusable per-epoch dispatch list

	// Diagnostics.
	epochs   uint64
	messages uint64
}

// NewCoordinator returns a coordinator over the given engines with the
// given conservative lookahead. The lookahead must be positive: a model
// with zero minimum cross-shard delay cannot be conservatively
// parallelised. Engines must be fresh (at time zero, nothing fired).
func NewCoordinator(engines []*Engine, lookahead Duration) *Coordinator {
	if len(engines) == 0 {
		panic("des: coordinator needs at least one engine")
	}
	if lookahead <= 0 {
		panic("des: conservative lookahead must be positive")
	}
	n := len(engines)
	out := make([][][]shardMsg, n)
	for i := range out {
		out[i] = make([][]shardMsg, n)
	}
	return &Coordinator{
		engines:   engines,
		lookahead: lookahead,
		outbox:    out,
		seq:       make([]uint64, n),
	}
}

// Lookahead returns the conservative epoch width.
func (c *Coordinator) Lookahead() Time { return c.lookahead }

// Epochs reports how many epochs have been executed.
func (c *Coordinator) Epochs() uint64 { return c.epochs }

// Messages reports how many cross-shard messages have been relayed.
func (c *Coordinator) Messages() uint64 { return c.messages }

// AtBarriers registers global quiesce points: at each listed time, after
// every event before it has executed and before any event at it does, fn
// runs on the coordinator goroutine with all engines stopped at exactly
// that time. times must be ascending and distinct. Used for control-plane
// events that mutate state spanning shards.
func (c *Coordinator) AtBarriers(times []Time, fn func(Time)) {
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			panic("des: barrier times must be ascending and distinct")
		}
	}
	if len(times) > 0 && fn == nil {
		panic("des: barrier times without a barrier func")
	}
	c.barriers = append([]Time(nil), times...)
	c.onBarrier = fn
}

// Post sends a cross-shard event: fn will run on shard dst's engine at
// absolute time at. It must be called from src's goroutine while src's
// epoch is executing (or while all shards are quiesced). Posting below
// the conservative lookahead is a model bug — it means the declared
// minimum cross-shard delay was wrong — and panics rather than silently
// corrupting causality.
func (c *Coordinator) Post(src, dst int, at Time, fn func()) {
	if src == dst {
		panic("des: Post between a shard and itself; schedule locally instead")
	}
	now := c.engines[src].Now()
	if at-now < c.lookahead {
		panic(fmt.Sprintf("des: cross-shard post %v ahead of shard %d at %v violates lookahead %v",
			at-now, src, now, c.lookahead))
	}
	c.seq[src]++
	c.outbox[src][dst] = append(c.outbox[src][dst],
		shardMsg{at: at, lamport: now, src: src, seq: c.seq[src], fn: fn})
}

// drain merges every mailbox into its destination engine in (at, lamport,
// src, seq) order. Called only while all shards are quiesced.
func (c *Coordinator) drain() {
	for dst, eng := range c.engines {
		buf := c.merge[:0]
		for src := range c.engines {
			if q := c.outbox[src][dst]; len(q) > 0 {
				buf = append(buf, q...)
				// Release the closures (and their captured packets) from
				// the truncated mailbox's backing array — without this the
				// high-water-mark slots pin them for the coordinator's
				// lifetime.
				for i := range q {
					q[i].fn = nil
				}
				c.outbox[src][dst] = q[:0]
			}
		}
		if len(buf) == 0 {
			continue
		}
		sort.Slice(buf, func(i, j int) bool { return msgLess(buf[i], buf[j]) })
		for i := range buf {
			// prio = lamport: the message fires among the destination's
			// same-timestamp events exactly where an event scheduled at
			// the sender's send time would have — the engine orders by
			// (at, prio, seq), and the sorted insertion fixes seq order
			// within equal (at, prio).
			eng.SchedulePrio(buf[i].at, buf[i].lamport, buf[i].fn)
			buf[i].fn = nil
		}
		c.messages += uint64(len(buf))
		c.merge = buf[:0]
	}
}

// satAdd returns a+b, saturating instead of overflowing — the lookahead is
// "infinite" when a partition has no cross-shard pairs at all.
func satAdd(a, b Time) Time {
	const maxTime = Time(1)<<62 - 1
	if b > maxTime-a {
		return maxTime
	}
	return a + b
}

// Run executes every event with firing time at or before deadline across
// all shards, honouring the registered barriers, then leaves every
// engine's clock at exactly deadline (the RunUntil contract). Events
// beyond the deadline stay queued, as with RunUntil.
func (c *Coordinator) Run(deadline Time) {
	n := len(c.engines)
	work := make([]chan Time, n)
	done := make(chan int, n)
	for i := range work {
		work[i] = make(chan Time)
		go func(i int, ch chan Time) {
			for end := range ch {
				c.engines[i].RunBefore(end)
				done <- i
			}
		}(i, work[i])
	}
	defer func() {
		for _, ch := range work {
			close(ch)
		}
	}()

	bi := 0
	for {
		c.drain()
		// Global minimum next event time. Engines are quiesced here, so no
		// event can appear before it.
		next, any := Time(0), false
		for _, e := range c.engines {
			if at, ok := e.NextAt(); ok && (!any || at < next) {
				next, any = at, true
			}
		}
		// Barriers beyond the deadline never fire, matching the sequential
		// control plane's "late events are dropped" rule.
		nextBarrier, haveBarrier := Time(0), false
		if bi < len(c.barriers) && c.barriers[bi] <= deadline {
			nextBarrier, haveBarrier = c.barriers[bi], true
		}
		if !any || next > deadline {
			if !haveBarrier {
				break
			}
			// Nothing to execute before the barrier: quiesce and apply.
			c.quiesce(nextBarrier)
			c.onBarrier(nextBarrier)
			bi++
			continue
		}
		if haveBarrier && nextBarrier <= next {
			// The barrier precedes (or ties) the next event; barrier
			// actions win same-time ties, as in the sequential engine.
			c.quiesce(nextBarrier)
			c.onBarrier(nextBarrier)
			bi++
			continue
		}
		end := satAdd(next, c.lookahead)
		if haveBarrier && nextBarrier < end {
			end = nextBarrier
		}
		if deadline < end-1 {
			end = deadline + 1
		}
		c.runEpoch(end, work, done)
	}
	for _, e := range c.engines {
		// The final epoch may have parked clocks at deadline+1; settle on
		// the RunUntil contract.
		e.now = deadline
	}
}

// quiesce parks every engine's clock at exactly t. Callable only when no
// engine has an event before t.
func (c *Coordinator) quiesce(t Time) {
	for _, e := range c.engines {
		if e.now < t {
			e.now = t
		}
	}
}

// runEpoch advances every shard to end, executing events before it. Shards
// with no events in the window are parked directly; a lone active shard
// runs inline to skip the handoff.
func (c *Coordinator) runEpoch(end Time, work []chan Time, done chan int) {
	c.epochs++
	active := c.active[:0]
	for i, e := range c.engines {
		if at, ok := e.NextAt(); ok && at < end {
			active = append(active, i)
			continue
		}
		if e.now < end {
			e.now = end
		}
	}
	c.active = active
	if len(active) == 1 {
		c.engines[active[0]].RunBefore(end)
		return
	}
	for _, i := range active {
		work[i] <- end
	}
	for range active {
		<-done
	}
}
