package des

// Conservative-parallel execution: a Coordinator advances N independent
// Engines (shards) in lock-step epochs bounded by the model's conservative
// lookahead — the minimum simulated delay any cross-shard interaction can
// have. Within an epoch every shard executes only events that fire strictly
// before its bound, so no shard can observe an effect another shard has not
// yet produced: a cross-shard message sent at local time t arrives at
// t + d with d >= la[src][dst], i.e. always at or beyond the receiver's
// current bound, and the coordinator moves it into the destination engine
// at an epoch barrier before the epoch that fires it.
//
// Epoch bounds are per-shard, derived from the per-(src, dst) lookahead
// matrix by an LBTS (lower bound on time stamp) fixpoint: shard i may
// advance to the earliest instant any other shard could still affect it,
//
//	E_j    = min(next_j, min_k(E_k + la[k][j]))   (the fixpoint)
//	bound_i = min_{j != i}(E_j + la[j][i])
//
// which degenerates to the classic single global-min window when the
// matrix is uniform, and opens strictly wider windows for distant shard
// pairs when it is not. The legacy regime is kept behind the scalar
// constructor (and core's GlobalMinLookahead switch) as the differential
// baseline.
//
// Determinism contract. A sharded run must be bit-stable for a fixed shard
// count regardless of OS scheduling or epoch regime. Three mechanisms
// guarantee it:
//
//  1. Each shard's engine is strictly sequential and only its own worker
//     goroutine touches it during an epoch.
//  2. Cross-shard messages travel as flat pooled records through
//     per-(src, dst) mailboxes that only the source shard appends to; at
//     the barrier the coordinator merges a destination's inbound records
//     into a sorted pending buffer under the explicit total order
//     (at, lamport, srcShard, seq) — arrival time, the sender's clock at
//     send, the sending shard, and a per-sender monotone counter — and
//     releases into the engine only the prefix firing inside the next
//     epoch window. Releasing exactly the records an epoch can fire (in
//     sorted order) makes destination-engine tie-breaks (its internal seq)
//     reproduce the total order for ANY epoch regime: without the bounded
//     pending release, per-pair windows could materialise two exact
//     (at, lamport) ties in different drain batches and invert their
//     (srcShard, seq) order.
//  3. Barrier callbacks (the session control plane) run on the
//     coordinator goroutine while every engine is quiesced at exactly the
//     barrier time, before any same-time events execute — mirroring the
//     sequential engine, where control events are scheduled at build time
//     and therefore win every same-timestamp tie.
//
// Epochs are demand-driven: the fixpoint seeds from each shard's next
// event (including pending cross-shard arrivals), so idle stretches cost
// one barrier instead of thousands, and the shard holding the global
// minimum always makes progress (its bound exceeds its next event because
// every lookahead entry is positive).

import (
	"fmt"
	"sort"
)

// maxTime is the saturation point for lookahead arithmetic: "no cross-shard
// path" is represented as an effectively infinite delay.
const maxTime = Time(1)<<62 - 1

// NextAt reports the firing time of the earliest pending event, or false
// when the queue is empty.
func (e *Engine) NextAt() (Time, bool) {
	ev := e.peek()
	if ev == nil {
		return 0, false
	}
	return ev.at, true
}

// RunBefore executes every event with firing time strictly before bound,
// then advances the clock to exactly bound (never backward). It is the
// epoch step of conservative-parallel execution: unlike RunUntil it leaves
// events at the bound itself unfired, so a barrier action at the bound
// runs before same-time events, exactly as a build-time-scheduled event
// would in a sequential run.
func (e *Engine) RunBefore(bound Time) {
	e.running = true
	for e.running {
		nxt := e.peek()
		if nxt == nil || nxt.at >= bound {
			break
		}
		e.ready[e.readyHead] = nil
		e.readyHead++
		e.exec(nxt)
	}
	e.running = false
	if e.now < bound {
		e.now = bound
	}
}

// Record kinds. recClosure is the legacy Post path (carries a func, may
// allocate at the call site); recPayload is the zero-alloc fast path
// (carries an inline P delivered through the OnDeliver hook).
const (
	recClosure uint8 = iota
	recPayload
)

// rec is one cross-shard event in flight between epochs: a flat mailbox
// record whose leading fields are the explicit merge key. Records live in
// per-(src, dst) mailboxes recycled in place at every drain, so posting a
// boundary packet allocates nothing in steady state.
type rec[P any] struct {
	at      Time   // delivery time on the destination engine
	lamport Time   // the sender's clock when the record was posted
	seq     uint64 // per-sender monotone counter
	src     int32  // sending shard
	kind    uint8  // recClosure or recPayload
	fn      func() // recClosure only
	payload P      // recPayload only
}

// recLess is the total order cross-shard records merge under. seq is
// unique per src, so the order is strict.
func recLess[P any](a, b *rec[P]) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.lamport != b.lamport {
		return a.lamport < b.lamport
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// pendQueue is a destination's sorted buffer of drained-but-unreleased
// records. It implements sort.Interface so re-sorting after a drain does
// not allocate (pointer receiver: the *pendQueue→sort.Interface conversion
// is alloc-free).
type pendQueue[P any] struct{ q []rec[P] }

func (p *pendQueue[P]) Len() int           { return len(p.q) }
func (p *pendQueue[P]) Less(i, j int) bool { return recLess(&p.q[i], &p.q[j]) }
func (p *pendQueue[P]) Swap(i, j int)      { p.q[i], p.q[j] = p.q[j], p.q[i] }

// dnode is a pooled delivery node: the engine-side carrier for a released
// payload record. fire is bound once, at node allocation, and recycles the
// node into its destination's free list after invoking the deliver hook —
// so releasing a payload record into an engine allocates nothing in steady
// state. A destination's pool is touched only by that shard's worker
// during an epoch and by the coordinator between epochs; the work/done
// channel handoff orders the two.
type dnode[P any] struct {
	payload P
	next    *dnode[P]
	fire    func()
}

// Coordinator drives a set of shard engines through conservative epochs.
// Build it with NewCoordinator (uniform lookahead, legacy global-min epoch
// regime) or NewCoordinatorMatrix (per-(src, dst) lookahead, per-shard
// LBTS bounds), register any barrier actions and the payload deliver hook,
// then call Run once. Coordinators are single-use.
type Coordinator[P any] struct {
	engines   []*Engine
	la        [][]Time // la[src][dst]; diagonal and "no path" are maxTime
	minLA     Time     // min off-diagonal entry (the global-min width)
	globalMin bool     // legacy regime: one uniform window per epoch

	deliver func(dst int, payload P) // OnDeliver hook for recPayload records
	pools   []*dnode[P]              // per-dst free lists of delivery nodes

	outbox [][][]rec[P]   // [src][dst] mailboxes, appended by src's worker
	seq    []uint64       // per-src record counter
	pend   []pendQueue[P] // per-dst sorted pending buffers

	barriers  []Time     // ascending, distinct quiesce points
	onBarrier func(Time) // runs with every engine quiesced at the time
	bi        int        // next unfired barrier (persists across Run calls)

	// Reusable per-epoch scratch.
	active []int  // dispatch list
	nexts  []Time // per-shard next event time (incl. pending records)
	eps    []Time // LBTS fixpoint values
	ends   []Time // per-shard epoch bounds
	fixed  []bool // fixpoint "settled" flags
	base   []uint64

	// Diagnostics.
	epochs   uint64
	messages uint64
	stallNum uint64 // sum over epochs of (n*max(work) - sum(work))
	stallDen uint64 // sum over epochs of n*max(work)
}

// NewCoordinator returns a coordinator over the given engines with a
// uniform conservative lookahead and the legacy global-min epoch regime:
// every epoch advances all shards to the same bound, the global minimum
// next event time plus the lookahead. The lookahead must be positive: a
// model with zero minimum cross-shard delay cannot be conservatively
// parallelised. Engines must be fresh (at time zero, nothing fired).
func NewCoordinator[P any](engines []*Engine, lookahead Duration) *Coordinator[P] {
	if lookahead <= 0 {
		panic("des: conservative lookahead must be positive")
	}
	n := len(engines)
	la := make([][]Time, n)
	for i := range la {
		la[i] = make([]Time, n)
		for j := range la[i] {
			if i == j {
				la[i][j] = maxTime
			} else {
				la[i][j] = lookahead
			}
		}
	}
	c := newCoordinator[P](engines, la)
	c.globalMin = true
	return c
}

// NewCoordinatorMatrix returns a coordinator using a per-(src, dst)
// lookahead matrix: la[s][d] is the minimum simulated delay of any message
// from shard s to shard d (use a huge value, e.g. 1<<62-1, for pairs with
// no cross-shard path; arithmetic saturates). Every off-diagonal entry
// must be positive. Epoch bounds are per-shard LBTS values over the
// matrix, so distant shard pairs stop over-synchronising each other.
func NewCoordinatorMatrix[P any](engines []*Engine, la [][]Duration) *Coordinator[P] {
	n := len(engines)
	if len(la) != n {
		panic("des: lookahead matrix must be n×n over the engines")
	}
	cp := make([][]Time, n)
	for i := range la {
		if len(la[i]) != n {
			panic("des: lookahead matrix must be n×n over the engines")
		}
		cp[i] = append([]Time(nil), la[i]...)
		cp[i][i] = maxTime // self-delay never bounds an epoch
		for j, d := range cp[i] {
			if i != j && d <= 0 {
				panic("des: conservative lookahead must be positive")
			}
		}
	}
	return newCoordinator[P](engines, cp)
}

func newCoordinator[P any](engines []*Engine, la [][]Time) *Coordinator[P] {
	if len(engines) == 0 {
		panic("des: coordinator needs at least one engine")
	}
	n := len(engines)
	out := make([][][]rec[P], n)
	for i := range out {
		out[i] = make([][]rec[P], n)
	}
	minLA := maxTime
	for i := range la {
		for j, d := range la[i] {
			if i != j && d < minLA {
				minLA = d
			}
		}
	}
	return &Coordinator[P]{
		engines: engines,
		la:      la,
		minLA:   minLA,
		outbox:  out,
		seq:     make([]uint64, n),
		pend:    make([]pendQueue[P], n),
		pools:   make([]*dnode[P], n),
		nexts:   make([]Time, n),
		eps:     make([]Time, n),
		ends:    make([]Time, n),
		fixed:   make([]bool, n),
		base:    make([]uint64, n),
	}
}

// Lookahead returns the minimum cross-shard lookahead (the legacy global
// epoch width; per-pair bounds are never narrower than this).
func (c *Coordinator[P]) Lookahead() Time { return c.minLA }

// GlobalMin reports whether the coordinator runs the legacy global-min
// epoch regime rather than per-pair LBTS bounds.
func (c *Coordinator[P]) GlobalMin() bool { return c.globalMin }

// Epochs reports how many epochs have been executed.
func (c *Coordinator[P]) Epochs() uint64 { return c.epochs }

// Messages reports how many cross-shard records have been released into
// destination engines.
func (c *Coordinator[P]) Messages() uint64 { return c.messages }

// StallShare reports the measured epoch load imbalance: the fraction of
// per-epoch worker capacity spent waiting at barriers, where each epoch's
// capacity is n shards times the busiest shard's executed-event count.
// 0 = perfectly balanced, →1 = one shard does all the work. It is a
// function of event counts only, so it is deterministic and usable as an
// auto-tuning signal even on a single core.
func (c *Coordinator[P]) StallShare() float64 {
	if c.stallDen == 0 {
		return 0
	}
	return float64(c.stallNum) / float64(c.stallDen)
}

// OnDeliver registers the hook that consumes payload records posted with
// PostPayload: fn runs on shard dst's engine at the record's firing time.
// Must be set before the first PostPayload.
func (c *Coordinator[P]) OnDeliver(fn func(dst int, payload P)) {
	if fn == nil {
		panic("des: nil deliver hook")
	}
	c.deliver = fn
}

// AtBarriers registers global quiesce points: at each listed time, after
// every event before it has executed and before any event at it does, fn
// runs on the coordinator goroutine with all engines stopped at exactly
// that time. times must be ascending and distinct. Used for control-plane
// events that mutate state spanning shards.
func (c *Coordinator[P]) AtBarriers(times []Time, fn func(Time)) {
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			panic("des: barrier times must be ascending and distinct")
		}
	}
	if len(times) > 0 && fn == nil {
		panic("des: barrier times without a barrier func")
	}
	c.barriers = append([]Time(nil), times...)
	c.onBarrier = fn
	c.bi = 0
}

// post validates and appends one record to the src→dst mailbox. Posting
// below the pair's conservative lookahead is a model bug — it means the
// declared minimum cross-shard delay was wrong — and panics rather than
// silently corrupting causality.
func (c *Coordinator[P]) post(src, dst int, at Time, r rec[P]) {
	if src == dst {
		panic("des: cross-shard post between a shard and itself; schedule locally instead")
	}
	now := c.engines[src].Now()
	if at-now < c.la[src][dst] {
		panic(fmt.Sprintf("des: cross-shard post %v ahead of shard %d at %v violates lookahead %v (pair %d→%d)",
			at-now, src, now, c.la[src][dst], src, dst))
	}
	c.seq[src]++
	r.at = at
	r.lamport = now
	r.seq = c.seq[src]
	r.src = int32(src)
	c.outbox[src][dst] = append(c.outbox[src][dst], r)
}

// Post sends a cross-shard event: fn will run on shard dst's engine at
// absolute time at. It must be called from src's goroutine while src's
// epoch is executing (or while all shards are quiesced). The closure is a
// per-call heap allocation — hot paths should use PostPayload instead.
func (c *Coordinator[P]) Post(src, dst int, at Time, fn func()) {
	if fn == nil {
		panic("des: posting nil func")
	}
	c.post(src, dst, at, rec[P]{kind: recClosure, fn: fn})
}

// PostPayload sends a cross-shard payload: the OnDeliver hook will run on
// shard dst's engine at absolute time at with the payload. The record is
// flat — no closure, no boxing — so the steady-state boundary handoff
// allocates nothing. Ordering is identical to Post (one shared per-src
// counter covers both kinds).
func (c *Coordinator[P]) PostPayload(src, dst int, at Time, payload P) {
	if c.deliver == nil {
		panic("des: PostPayload without an OnDeliver hook")
	}
	c.post(src, dst, at, rec[P]{kind: recPayload, payload: payload})
}

// drain moves every mailbox into its destination's sorted pending buffer.
// Called only while all shards are quiesced. Mailboxes are recycled in
// place (truncated, slots zeroed so captured closures/payloads are not
// pinned by high-water-mark slots).
func (c *Coordinator[P]) drain() {
	var zero rec[P]
	for dst := range c.engines {
		pq := &c.pend[dst]
		grew := false
		for src := range c.engines {
			q := c.outbox[src][dst]
			if len(q) == 0 {
				continue
			}
			pq.q = append(pq.q, q...)
			for i := range q {
				q[i] = zero
			}
			c.outbox[src][dst] = q[:0]
			grew = true
		}
		if grew {
			sort.Sort(pq)
		}
	}
}

// release schedules dst's pending records firing strictly before bound
// into its engine, in merge order. prio = lamport: the record fires among
// the destination's same-timestamp events exactly where an event scheduled
// at the sender's send time would have — the engine orders by (at, prio,
// seq), and releasing a sorted prefix fixes seq order within equal
// (at, prio). Only records inside the epoch window are released, so the
// engine-seq tie-break reproduces the (at, lamport, src, seq) total order
// under any epoch regime.
func (c *Coordinator[P]) release(dst int, bound Time) {
	pq := &c.pend[dst]
	n := 0
	for n < len(pq.q) && pq.q[n].at < bound {
		n++
	}
	if n == 0 {
		return
	}
	eng := c.engines[dst]
	for i := 0; i < n; i++ {
		r := &pq.q[i]
		if r.kind == recClosure {
			eng.SchedulePrio(r.at, r.lamport, r.fn)
			continue
		}
		nd := c.pools[dst]
		if nd == nil {
			nd = c.newNode(dst)
		} else {
			c.pools[dst] = nd.next
		}
		nd.payload = r.payload
		eng.SchedulePrio(r.at, r.lamport, nd.fire)
	}
	c.messages += uint64(n)
	m := copy(pq.q, pq.q[n:])
	var zero rec[P]
	for i := m; i < len(pq.q); i++ {
		pq.q[i] = zero
	}
	pq.q = pq.q[:m]
}

// newNode builds a delivery node with its fire callback bound once. fire
// recycles the node before invoking the hook, so the node is reusable
// within the same epoch and re-entrant posting is safe (posting touches
// mailboxes, never pools).
func (c *Coordinator[P]) newNode(dst int) *dnode[P] {
	nd := &dnode[P]{}
	nd.fire = func() {
		p := nd.payload
		var zero P
		nd.payload = zero
		nd.next = c.pools[dst]
		c.pools[dst] = nd
		c.deliver(dst, p)
	}
	return nd
}

// nextFor reports shard i's earliest future work: its engine's next event
// or its earliest pending cross-shard record, whichever is sooner. The
// pending head MUST count — an engine-only minimum would let Run terminate
// (or the fixpoint settle) with undelivered records still buffered.
func (c *Coordinator[P]) nextFor(i int) (Time, bool) {
	at, ok := c.engines[i].NextAt()
	if pq := &c.pend[i]; len(pq.q) > 0 && (!ok || pq.q[0].at < at) {
		return pq.q[0].at, true
	}
	return at, ok
}

// satAdd returns a+b, saturating instead of overflowing — the lookahead is
// "infinite" when a shard pair has no cross-shard path at all.
func satAdd(a, b Time) Time {
	if b > maxTime-a {
		return maxTime
	}
	return a + b
}

// pairBounds fills c.ends with per-shard LBTS epoch bounds from c.nexts
// (maxTime for idle shards) via Dijkstra-style relaxation of
// E_j = min(next_j, min_k(E_k + la[k][j])): settle the smallest
// unsettled E, relax its outgoing edges, repeat. All entries positive ⇒
// settled values only grow ⇒ the greedy order is exact. The bound for
// shard i then takes only *incoming* pairs: bound_i = min_{j≠i}(E_j +
// la[j][i]). The argmin shard's bound strictly exceeds its next event, so
// every round makes progress.
func (c *Coordinator[P]) pairBounds() {
	n := len(c.engines)
	copy(c.eps, c.nexts)
	for i := range c.fixed {
		c.fixed[i] = false
	}
	for range c.engines {
		u, best := -1, maxTime
		for i := 0; i < n; i++ {
			if !c.fixed[i] && c.eps[i] < best {
				u, best = i, c.eps[i]
			}
		}
		if u < 0 {
			break
		}
		c.fixed[u] = true
		for v := 0; v < n; v++ {
			if v == u || c.fixed[v] {
				continue
			}
			if d := satAdd(best, c.la[u][v]); d < c.eps[v] {
				c.eps[v] = d
			}
		}
	}
	for i := 0; i < n; i++ {
		b := maxTime
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			if d := satAdd(c.eps[j], c.la[j][i]); d < b {
				b = d
			}
		}
		c.ends[i] = b
	}
}

// Run executes every event with firing time at or before deadline across
// all shards, honouring the registered barriers, then leaves every
// engine's clock at exactly deadline (the RunUntil contract). Events
// beyond the deadline stay queued, as with RunUntil — and Run may be
// called again with a later deadline to continue, which is how sessions
// pause at a checkpoint instant: every engine is globally quiesced at the
// deadline between calls (a natural barrier), so a snapshot taken there
// sees consistent cross-shard state.
func (c *Coordinator[P]) Run(deadline Time) {
	n := len(c.engines)
	work := make([]chan Time, n)
	done := make(chan int, n)
	for i := range work {
		work[i] = make(chan Time)
		go func(i int, ch chan Time) {
			for end := range ch {
				c.engines[i].RunBefore(end)
				done <- i
			}
		}(i, work[i])
	}
	defer func() {
		for _, ch := range work {
			close(ch)
		}
	}()

	bi := c.bi
	defer func() { c.bi = bi }()
	for {
		c.drain()
		// Global minimum over engine queues AND pending buffers. Engines
		// are quiesced here, so no event can appear before it.
		next, any := Time(0), false
		for i := range c.engines {
			at, ok := c.nextFor(i)
			if !ok {
				c.nexts[i] = maxTime
				continue
			}
			c.nexts[i] = at
			if !any || at < next {
				next, any = at, true
			}
		}
		// Barriers beyond the deadline never fire, matching the sequential
		// control plane's "late events are dropped" rule.
		nextBarrier, haveBarrier := Time(0), false
		if bi < len(c.barriers) && c.barriers[bi] <= deadline {
			nextBarrier, haveBarrier = c.barriers[bi], true
		}
		if !any || next > deadline {
			if !haveBarrier {
				break
			}
			// Nothing to execute before the barrier: quiesce and apply.
			c.quiesce(nextBarrier)
			c.onBarrier(nextBarrier)
			bi++
			continue
		}
		if haveBarrier && nextBarrier <= next {
			// The barrier precedes (or ties) the next event; barrier
			// actions win same-time ties, as in the sequential engine.
			c.quiesce(nextBarrier)
			c.onBarrier(nextBarrier)
			bi++
			continue
		}
		if c.globalMin {
			end := satAdd(next, c.minLA)
			for i := range c.ends {
				c.ends[i] = end
			}
		} else {
			c.pairBounds()
		}
		for i := range c.ends {
			if haveBarrier && nextBarrier < c.ends[i] {
				c.ends[i] = nextBarrier
			}
			if deadline < c.ends[i]-1 {
				c.ends[i] = deadline + 1
			}
		}
		c.runEpoch(work, done)
	}
	for _, e := range c.engines {
		// The final epoch may have parked clocks beyond the deadline;
		// settle on the RunUntil contract.
		e.now = deadline
	}
}

// quiesce parks every engine's clock at exactly t. Callable only when no
// engine has an event before t.
func (c *Coordinator[P]) quiesce(t Time) {
	for _, e := range c.engines {
		if e.now < t {
			e.now = t
		}
	}
}

// runEpoch releases each shard's in-window pending records and advances it
// to its bound, executing events before it. Shards with nothing in their
// window are parked directly; a lone active shard runs inline to skip the
// handoff. Epoch work counts feed the stall-share (load imbalance) meter.
func (c *Coordinator[P]) runEpoch(work []chan Time, done chan int) {
	c.epochs++
	active := c.active[:0]
	for i, e := range c.engines {
		c.release(i, c.ends[i])
		c.base[i] = e.executed
		if at, ok := e.NextAt(); ok && at < c.ends[i] {
			active = append(active, i)
			continue
		}
		if e.now < c.ends[i] {
			e.now = c.ends[i]
		}
	}
	c.active = active
	if len(active) == 1 {
		i := active[0]
		c.engines[i].RunBefore(c.ends[i])
	} else {
		for _, i := range active {
			work[i] <- c.ends[i]
		}
		for range active {
			<-done
		}
	}
	var wmax, wsum uint64
	for i, e := range c.engines {
		w := e.executed - c.base[i]
		wsum += w
		if w > wmax {
			wmax = w
		}
	}
	if wmax > 0 {
		nn := uint64(len(c.engines))
		c.stallNum += nn*wmax - wsum
		c.stallDen += nn * wmax
	}
}

// Checkpoint support. Between Run calls every engine is quiesced at the
// previous deadline and all cross-shard state lives in mailboxes and
// pending buffers; CheckpointDrain folds the former into the latter so a
// snapshot only has to serialize sorted pending records plus the per-src
// counters and diagnostics below.

// ShardRec is one serializable pending cross-shard record. Only payload
// records serialize; a closure record in a pending buffer makes the run
// unsnapshotable.
type ShardRec[P any] struct {
	At      Time
	Lamport Time
	Seq     uint64
	Src     int32
	Payload P
}

// CheckpointDrain moves every mailbox into its destination's sorted
// pending buffer. Call only between Run calls (all engines quiesced).
func (c *Coordinator[P]) CheckpointDrain() { c.drain() }

// PendingRecords returns dst's pending cross-shard records in merge
// order, or an error if any is a closure record (legacy Post path).
func (c *Coordinator[P]) PendingRecords(dst int) ([]ShardRec[P], error) {
	pq := &c.pend[dst]
	out := make([]ShardRec[P], 0, len(pq.q))
	for i := range pq.q {
		r := &pq.q[i]
		if r.kind != recPayload {
			return nil, fmt.Errorf("des: pending closure record for shard %d at %v; this configuration cannot be snapshotted", dst, r.at)
		}
		out = append(out, ShardRec[P]{At: r.at, Lamport: r.lamport, Seq: r.seq, Src: r.src, Payload: r.payload})
	}
	return out, nil
}

// RestorePending installs dst's pending records (in the merge order
// PendingRecords reported them). Call on a fresh coordinator before Run.
func (c *Coordinator[P]) RestorePending(dst int, recs []ShardRec[P]) {
	pq := &c.pend[dst]
	pq.q = pq.q[:0]
	for _, r := range recs {
		pq.q = append(pq.q, rec[P]{at: r.At, lamport: r.Lamport, seq: r.Seq, src: r.Src, kind: recPayload, payload: r.Payload})
	}
}

// SrcSeqs returns the per-source record counters (a copy).
func (c *Coordinator[P]) SrcSeqs() []uint64 { return append([]uint64(nil), c.seq...) }

// RestoreSrcSeqs installs the per-source record counters.
func (c *Coordinator[P]) RestoreSrcSeqs(seqs []uint64) {
	if len(seqs) != len(c.seq) {
		panic("des: source-seq count mismatch on restore")
	}
	copy(c.seq, seqs)
}

// Diagnostics returns the coordinator's cumulative counters for
// serialization: epochs, released messages, and the stall-share ratio's
// numerator/denominator.
func (c *Coordinator[P]) Diagnostics() (epochs, messages, stallNum, stallDen uint64) {
	return c.epochs, c.messages, c.stallNum, c.stallDen
}

// RestoreDiagnostics installs previously captured counters so a restored
// run's totals continue from the checkpoint.
func (c *Coordinator[P]) RestoreDiagnostics(epochs, messages, stallNum, stallDen uint64) {
	c.epochs, c.messages, c.stallNum, c.stallDen = epochs, messages, stallNum, stallDen
}
