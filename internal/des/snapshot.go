package des

import (
	"fmt"
	"sort"
)

// Checkpoint support: the engine can enumerate its pending events as
// (at, prio, seq, kind, arg) records and be rebuilt from them.
//
// Closures do not serialize, so persistent events carry a callback-kind
// tag from the registry below plus a small component argument (a slot
// index in the session's component registry). A snapshot walks the queue
// and emits the tagged records in seq order; a restore rebuilds the
// immutable session structure (which re-creates the KindBuild events),
// advances the clock with RestoreNow, and replays the runtime records
// through SchedulePrioKind with the callback resolved from the component
// the arg names. Replaying in original seq order hands out fresh,
// ascending sequence numbers, which preserves every relative (at, prio,
// seq) comparison — the firing order of the restored engine is exactly
// the original's.
//
// The registry is append-only: kinds are stable format identifiers (they
// appear in snapshot files), so new callback families take new numbers
// and existing numbers never change meaning.
const (
	// KindNone marks an event that cannot rehydrate: snapshotting an
	// engine that holds one fails. The zero value, so untagged Schedule
	// calls stay snapshot-incompatible by default instead of silently
	// misrestoring.
	KindNone uint16 = iota
	// KindBuild marks events the session build plane re-creates itself on
	// restore (membership/fault/reopt schedules compiled from the config).
	// They are skipped at snapshot time, not serialized.
	KindBuild
	// KindMuxDone is a MUX transmit-completion (arg = mux slot).
	KindMuxDone
	// KindSRRetry is a (σ,ρ) regulator token-wait retry (arg = regulator slot).
	KindSRRetry
	// KindSRLDone is a (σ,ρ,λ) transmit-completion (arg = regulator slot).
	KindSRLDone
	// KindSRLOn / KindSRLOff are (σ,ρ,λ) duty-cycle phase switches
	// (arg = regulator slot).
	KindSRLOn
	KindSRLOff
	// KindFlight is an in-flight packet delivery on a pure-delay path
	// (arg = flight-pool node index; the payload is serialized separately).
	KindFlight
	// KindSrcCycle / KindSrcTick are extremal traffic-source callbacks
	// (arg = group/flow index).
	KindSrcCycle
	KindSrcTick
	// KindCtlTick is an adaptive-controller sampling tick (arg = host id).
	KindCtlTick
	// KindAudioTalk / KindAudioWake are VBR audio-source callbacks: the
	// in-talkspurt packet tick and the end-of-silence wake (arg = flow).
	KindAudioTalk
	KindAudioWake
	// KindVideoTick is a VBR video-source frame tick (arg = flow).
	KindVideoTick
	// KindLinkDone is a router-link serialisation completion
	// (arg = the fabric's link-registry slot).
	KindLinkDone
	// KindHopFlight is a packet propagating between router hops or down an
	// access link (arg = flight-pool node index; payload serialized inline).
	KindHopFlight
)

// PendingEvent is one serializable queue entry.
type PendingEvent struct {
	At   Time
	Prio Time
	Seq  uint64
	Kind uint16
	Arg  uint32
}

// PendingEvents returns every live pending event in seq order, including
// KindBuild events (callers filter those — they are rebuilt, not
// replayed). An event with KindNone makes the engine unsnapshotable and
// returns an error naming its firing time.
func (e *Engine) PendingEvents() ([]PendingEvent, error) {
	out := make([]PendingEvent, 0, e.pending)
	add := func(ev *event) error {
		if ev.canceled {
			return nil
		}
		if ev.kind == KindNone {
			return fmt.Errorf("des: pending event at %v has no callback kind; this configuration cannot be snapshotted", ev.at)
		}
		out = append(out, PendingEvent{At: ev.at, Prio: ev.prio, Seq: ev.seq, Kind: ev.kind, Arg: ev.arg})
		return nil
	}
	for _, ev := range e.ready[e.readyHead:] {
		if err := add(ev); err != nil {
			return nil, err
		}
	}
	for lvl := range e.levels {
		l := &e.levels[lvl]
		if l.count == 0 {
			continue
		}
		for idx := range l.bucket {
			for ev := l.bucket[idx]; ev != nil; ev = ev.next {
				if err := add(ev); err != nil {
					return nil, err
				}
			}
		}
	}
	for _, ev := range e.overflow.evs {
		if err := add(ev); err != nil {
			return nil, err
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	if len(out) != e.pending {
		return nil, fmt.Errorf("des: queue walk found %d live events, engine counts %d", len(out), e.pending)
	}
	return out, nil
}

// RestoreNow advances the clock to the checkpoint instant without firing
// anything — the restore step between rebuilding the session (which may
// schedule KindBuild events beyond t) and replaying the serialized
// runtime events. Moving the clock backwards panics.
func (e *Engine) RestoreNow(t Time) {
	if t < e.now {
		panic(fmt.Sprintf("des: restoring clock to %v before now %v", t, e.now))
	}
	e.now = t
}
