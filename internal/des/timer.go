package des

// Ticker fires a callback at a fixed period until stopped. It is the
// building block for periodic processes such as regulator duty cycles and
// rate-estimation windows. The rearming closure is built once at
// construction and the queue records come from the engine's pool, so a
// running ticker allocates nothing per cycle.
type Ticker struct {
	eng    *Engine
	period Duration
	fn     func()
	tick   func() // built once; rearms itself through the event pool
	ev     Event
	stop   bool
}

// NewTicker schedules fn every period nanoseconds, first firing one period
// from now. It panics if period <= 0.
func NewTicker(eng *Engine, period Duration, fn func()) *Ticker {
	return eng.ScheduleEvery(period, period, fn)
}

// ScheduleEvery schedules fn to fire first after `first` nanoseconds and
// then every `period` nanoseconds, rearming in place (no per-cycle
// allocation). It panics if period <= 0 or first < 0. The next period is
// measured from the firing time, after fn returns — so a callback that
// schedules other work at the same instant keeps the seed engine's
// tie-break order.
func (e *Engine) ScheduleEvery(first, period Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("des: ticker period must be positive")
	}
	if first < 0 {
		panic("des: ticker first firing must not be in the past")
	}
	if fn == nil {
		panic("des: ticker with nil func")
	}
	t := &Ticker{eng: e, period: period, fn: fn}
	t.tick = func() {
		if t.stop {
			return
		}
		t.fn()
		if !t.stop {
			t.ev = t.eng.ScheduleIn(t.period, t.tick)
		}
	}
	t.ev = e.ScheduleIn(first, t.tick)
	return t
}

// Stop cancels the ticker. Safe to call from inside the callback.
func (t *Ticker) Stop() {
	t.stop = true
	t.eng.Cancel(t.ev)
}

// Reset changes the period, taking effect from the next firing.
func (t *Ticker) Reset(period Duration) {
	if period <= 0 {
		panic("des: ticker period must be positive")
	}
	t.period = period
}

// Timer is a one-shot rescheduleable alarm.
type Timer struct {
	eng *Engine
	ev  Event
}

// NewTimer returns an unarmed timer.
func NewTimer(eng *Engine) *Timer { return &Timer{eng: eng} }

// Arm schedules fn to fire after d, canceling any previously armed firing.
func (t *Timer) Arm(d Duration, fn func()) {
	t.Disarm()
	t.ev = t.eng.ScheduleIn(d, fn)
}

// ArmAt schedules fn to fire at absolute time at, canceling any previously
// armed firing.
func (t *Timer) ArmAt(at Time, fn func()) {
	t.Disarm()
	t.ev = t.eng.Schedule(at, fn)
}

// Disarm cancels the pending firing, if any.
func (t *Timer) Disarm() {
	t.eng.Cancel(t.ev)
	t.ev = Event{}
}

// Armed reports whether a firing is pending.
func (t *Timer) Armed() bool { return t.ev.Pending() }
