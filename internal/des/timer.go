package des

// Ticker fires a callback at a fixed period until stopped. It is the
// building block for periodic processes such as regulator duty cycles and
// rate-estimation windows.
type Ticker struct {
	eng    *Engine
	period Duration
	fn     func()
	ev     *Event
	stop   bool
}

// NewTicker schedules fn every period nanoseconds, first firing one period
// from now. It panics if period <= 0.
func NewTicker(eng *Engine, period Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("des: ticker period must be positive")
	}
	t := &Ticker{eng: eng, period: period, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.eng.ScheduleIn(t.period, func() {
		if t.stop {
			return
		}
		t.fn()
		if !t.stop {
			t.arm()
		}
	})
}

// Stop cancels the ticker. Safe to call from inside the callback.
func (t *Ticker) Stop() {
	t.stop = true
	t.eng.Cancel(t.ev)
}

// Reset changes the period, taking effect from the next firing.
func (t *Ticker) Reset(period Duration) {
	if period <= 0 {
		panic("des: ticker period must be positive")
	}
	t.period = period
}

// Timer is a one-shot rescheduleable alarm.
type Timer struct {
	eng *Engine
	ev  *Event
}

// NewTimer returns an unarmed timer.
func NewTimer(eng *Engine) *Timer { return &Timer{eng: eng} }

// Arm schedules fn to fire after d, canceling any previously armed firing.
func (t *Timer) Arm(d Duration, fn func()) {
	t.Disarm()
	t.ev = t.eng.ScheduleIn(d, fn)
}

// ArmAt schedules fn to fire at absolute time at, canceling any previously
// armed firing.
func (t *Timer) ArmAt(at Time, fn func()) {
	t.Disarm()
	t.ev = t.eng.Schedule(at, fn)
}

// Disarm cancels the pending firing, if any.
func (t *Timer) Disarm() {
	if t.ev != nil {
		t.eng.Cancel(t.ev)
		t.ev = nil
	}
}

// Armed reports whether a firing is pending.
func (t *Timer) Armed() bool {
	return t.ev != nil && !t.ev.Canceled() && t.ev.index >= 0
}
