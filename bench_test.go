package wdc

// Benchmark harness: one testing.B per paper table and figure, plus the
// ablation benches DESIGN.md calls out. Figure/table benches run reduced-
// scale sweeps (QuickOptions) whose curve shapes match the full-scale runs
// produced by cmd/wdcsim; see EXPERIMENTS.md for the full-scale record.
//
// Run everything with:
//
//	go test -bench=. -benchmem
import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/harness"
	"repro/internal/mux"
	"repro/internal/traffic"
)

// reportFig4 attaches the headline metrics to the bench output so a bench
// run doubles as a shape check.
func reportFig4(b *testing.B, r Fig4Result) {
	b.Helper()
	if r.CrossoverOK {
		b.ReportMetric(r.Crossover, "crossover")
		b.ReportMetric(r.MaxRatio, "max-ratio")
	}
}

func benchFig4(b *testing.B, mix Mix) {
	var last Fig4Result
	for i := 0; i < b.N; i++ {
		last = Fig4(mix, QuickOptions(uint64(i+1)))
	}
	reportFig4(b, last)
}

// BenchmarkFig4a regenerates Fig. 4(a): three audio flows, single hop.
func BenchmarkFig4a(b *testing.B) { benchFig4(b, MixAudio) }

// BenchmarkFig4b regenerates Fig. 4(b): three video flows, single hop.
func BenchmarkFig4b(b *testing.B) { benchFig4(b, MixVideo) }

// BenchmarkFig4c regenerates Fig. 4(c): one video + two audio flows.
func BenchmarkFig4c(b *testing.B) { benchFig4(b, MixHetero) }

func benchFig6(b *testing.B, mix Mix) {
	opts := QuickOptions(1)
	opts.NumHosts = 60
	opts.Loads = []float64{0.4, 0.9}
	var last Fig6Result
	for i := 0; i < b.N; i++ {
		opts.Seed = uint64(i + 1)
		last = Fig6(mix, opts)
	}
	if last.CrossoverOK {
		b.ReportMetric(last.Crossover, "crossover")
	}
}

// BenchmarkFig6a regenerates Fig. 6(a): 3 audio groups, six schemes.
func BenchmarkFig6a(b *testing.B) { benchFig6(b, MixAudio) }

// BenchmarkFig6b regenerates Fig. 6(b): 3 video groups.
func BenchmarkFig6b(b *testing.B) { benchFig6(b, MixVideo) }

// BenchmarkFig6c regenerates Fig. 6(c): heterogeneous groups.
func BenchmarkFig6c(b *testing.B) { benchFig6(b, MixHetero) }

func benchLayerTable(b *testing.B, mix Mix) {
	opts := QuickOptions(1)
	opts.NumHosts = 300
	var last LayerSweepResult
	for i := 0; i < b.N; i++ {
		opts.Seed = uint64(i + 1)
		last = LayerSweep(mix, opts)
	}
	if n := len(last.Rows); n > 0 {
		b.ReportMetric(float64(last.Rows[n-1].CapacityAware), "ca-layers-max")
		b.ReportMetric(float64(last.Rows[0].RegulatedLayers), "reg-layers")
	}
}

// BenchmarkTableI regenerates Table I (audio layer counts).
func BenchmarkTableI(b *testing.B) { benchLayerTable(b, MixAudio) }

// BenchmarkTableII regenerates Table II (video layer counts).
func BenchmarkTableII(b *testing.B) { benchLayerTable(b, MixVideo) }

// BenchmarkTableIII regenerates Table III (heterogeneous layer counts).
func BenchmarkTableIII(b *testing.B) { benchLayerTable(b, MixHetero) }

// BenchmarkFig2Trace regenerates the Fig. 2 regulator operation trace.
func BenchmarkFig2Trace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		harness.Fig2Trace(10_000, 250_000, 1_000_000, des.Seconds(1), 256)
	}
}

// BenchmarkRhoStarTable regenerates the Theorem 3/4 threshold table.
func BenchmarkRhoStarTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		harness.RhoStarTable(100)
	}
}

// BenchmarkImprovementTable regenerates the Theorem 5/6 ratio table.
func BenchmarkImprovementTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		harness.ImprovementTable(3, nil)
	}
}

// --- Ablation benches (DESIGN.md §6) ---

// BenchmarkAblationStagger compares the staggered duty cycle against
// aligned phases at high load: the metric of interest is wdb-aligned /
// wdb-staggered (>1 means staggering pays).
func BenchmarkAblationStagger(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		cfg := SingleHopConfig{Mix: MixVideo, Load: 0.9, Scheme: SchemeSRL,
			Duration: 13 * des.Second, Seed: uint64(i + 1)}
		st := RunSingleHop(cfg)
		cfg.StaggerAligned = true
		al := RunSingleHop(cfg)
		ratio = al.WDB / st.WDB
	}
	b.ReportMetric(ratio, "aligned/staggered")
}

// BenchmarkAblationLambda sweeps the duty-cycle control factor: λ at the
// paper's Eq. (1) minimum versus regulators configured with 2× the
// vacation (emulating λ' = 2λ by doubling σ in V while keeping W).
func BenchmarkAblationLambda(b *testing.B) {
	var base, doubled float64
	for i := 0; i < b.N; i++ {
		cfg := SingleHopConfig{Mix: MixVideo, Load: 0.8, Scheme: SchemeSRL,
			Duration: 13 * des.Second, Seed: uint64(i + 1)}
		base = RunSingleHop(cfg).WDB
		cfg.BurstSec = 0.30 // doubles σ hence V = σ/ρ
		doubled = RunSingleHop(cfg).WDB
	}
	b.ReportMetric(doubled/base, "2xSigma/base")
}

// BenchmarkAblationCapacityFactor sweeps C_out/C for the capacity-aware
// comparator, reporting the layer count at the paper's heaviest load.
func BenchmarkAblationCapacityFactor(b *testing.B) {
	var layers float64
	for i := 0; i < b.N; i++ {
		for _, factor := range []float64{1.5, 2.0, 3.0} {
			r := Run(Config{NumHosts: 300, Mix: MixAudio, Load: 0.95,
				Scheme: SchemeCapacityAware, CapacityFactor: factor,
				Duration: des.Second, Seed: uint64(i + 1)})
			layers = float64(r.Layers)
		}
	}
	b.ReportMetric(layers, "layers@factor3")
}

// BenchmarkAblationClusterK sweeps the DSCT cluster parameter k.
func BenchmarkAblationClusterK(b *testing.B) {
	var layers float64
	for i := 0; i < b.N; i++ {
		for _, k := range []int{2, 3, 4, 5} {
			r := core.NewSession(core.Config{NumHosts: 300, Mix: traffic.MixAudio,
				Load: 0.5, Scheme: core.SchemeSRL, ClusterK: k, Seed: uint64(i + 1)})
			l := 0
			for _, tr := range r.Trees() {
				if tl := tr.Layers(); tl > l {
					l = tl
				}
			}
			layers = float64(l)
		}
	}
	b.ReportMetric(layers, "layers@k5")
}

// BenchmarkAblationRateEstimator compares the adaptive controller on
// WindowRate (default) against runs pinned to each fixed scheme,
// exercising the estimator-driven switching path end to end.
func BenchmarkAblationRateEstimator(b *testing.B) {
	var ad float64
	for i := 0; i < b.N; i++ {
		ad = RunSingleHop(SingleHopConfig{Mix: MixVideo, Load: 0.9,
			Scheme: SchemeAdaptive, Duration: 13 * des.Second, Seed: uint64(i + 1)}).WDB
	}
	b.ReportMetric(ad, "adaptive-wdb")
}

// BenchmarkAblationDiscipline compares the general-MUX adversary (LIFO)
// against FIFO service for the (σ,ρ) scheme at high load — the gap is the
// busy-period exposure the paper's bounds describe.
func BenchmarkAblationDiscipline(b *testing.B) {
	var lifo, fifo float64
	for i := 0; i < b.N; i++ {
		cfg := SingleHopConfig{Mix: MixVideo, Load: 0.9, Scheme: SchemeSigmaRho,
			Duration: 13 * des.Second, Seed: uint64(i + 1)}
		lifo = RunSingleHop(cfg).WDB
		cfg.Discipline = mux.FIFO
		fifo = RunSingleHop(cfg).WDB
	}
	b.ReportMetric(lifo/fifo, "lifo/fifo")
}

// BenchmarkAblationWorkload compares extremal against stochastic VBR
// drive at high load — quantifying how far typical-case traffic sits from
// the worst case.
func BenchmarkAblationWorkload(b *testing.B) {
	var ext, vbr float64
	for i := 0; i < b.N; i++ {
		cfg := SingleHopConfig{Mix: MixVideo, Load: 0.9, Scheme: SchemeSigmaRho,
			Duration: 13 * des.Second, Seed: uint64(i + 1), EnvelopeHorizonSec: 13}
		ext = RunSingleHop(cfg).WDB
		cfg.Workload = WorkloadVBR
		vbr = RunSingleHop(cfg).WDB
	}
	b.ReportMetric(ext/vbr, "extremal/vbr")
}

// --- End-to-end engine benches ---

// BenchmarkScenarioScale is the scale benchmark: the registered
// waxman-zipf-16 scenario — 2000 hosts on a 64-router Waxman underlay,
// 16 overlapping groups with Zipf-skewed membership — at one heavy load
// under both regulators, full population, reduced duration. This is the
// partial-membership counterpart of BenchmarkSessionRun: the same engine
// at 33× the host-group scale of the paper's setup.
func BenchmarkScenarioScale(b *testing.B) {
	sc := MustScenario("waxman-zipf-16")
	var delivered uint64
	for i := 0; i < b.N; i++ {
		r, err := ScenarioSweep(sc, Options{Seed: uint64(i + 1),
			Loads: []float64{0.8}, Duration: 2 * des.Second})
		if err != nil {
			b.Fatal(err)
		}
		delivered = r.Delivered
	}
	b.ReportMetric(float64(delivered), "deliveries")
}

// BenchmarkChurnScale is the dynamic-membership counterpart of
// BenchmarkScenarioScale: the registered churn-waxman-16 scenario — the
// same 2000-host, 16-Zipf-group Waxman population with ~10% Poisson
// membership turnover — at one heavy load, exercising graft, prune,
// subtree repair, regulator detach/attach, and re-staggering on the hot
// path alongside regular forwarding.
func BenchmarkChurnScale(b *testing.B) {
	sc := MustScenario("churn-waxman-16")
	var delivered, lost uint64
	var joins int
	for i := 0; i < b.N; i++ {
		r, err := ScenarioSweep(sc, Options{Seed: uint64(i + 1),
			Loads: []float64{0.8}, Duration: 2 * des.Second})
		if err != nil {
			b.Fatal(err)
		}
		delivered, lost, joins = r.Delivered, r.Lost, r.Joins
	}
	b.ReportMetric(float64(delivered), "deliveries")
	b.ReportMetric(float64(lost), "lost")
	b.ReportMetric(float64(joins), "joins")
}

// BenchmarkStrategyScale runs one waxman-zipf-16 cell per registered
// overlay strategy (2000 hosts, 16 Zipf groups, load 0.8, (σ, ρ, λ))
// and reports each strategy's worst-case delay alongside its wall
// clock — the engine-level strategy comparison EXPERIMENTS.md records.
func BenchmarkStrategyScale(b *testing.B) {
	sc := MustScenario("waxman-zipf-16")
	for _, strat := range Strategies() {
		b.Run("strategy="+strat, func(b *testing.B) {
			var wdb float64
			for i := 0; i < b.N; i++ {
				r, err := ScenarioSweep(sc, Options{Seed: uint64(i + 1), Strategy: strat,
					Loads: []float64{0.8}, Duration: 2 * des.Second})
				if err != nil {
					b.Fatal(err)
				}
				wdb = r.Curves[0].WDB.Y[0]
			}
			b.ReportMetric(wdb, "wdb-s")
		})
	}
}

// BenchmarkReoptChurnScale is BenchmarkChurnScale with the online
// re-optimization plane running: the registered reopt-churn-waxman-16
// scenario's dsct cell at load 0.8 — measurement accumulation on every
// delivery plus periodic rewire passes on top of the churn control
// plane. The delta against BenchmarkChurnScale is the plane's total
// overhead; reopts/moves report how much rewiring actually happened.
func BenchmarkReoptChurnScale(b *testing.B) {
	sc := MustScenario("reopt-churn-waxman-16")
	sc.Combos = sc.Combos[:1]
	var r ScenarioResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = ScenarioSweep(sc, Options{Seed: uint64(i + 1),
			Loads: []float64{0.8}, Duration: 2 * des.Second})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.Delivered), "deliveries")
	b.ReportMetric(float64(r.Lost), "lost")
	b.ReportMetric(float64(r.Reopts), "reopts")
	b.ReportMetric(float64(r.ReoptMoves), "moves")
}

// BenchmarkShardScale measures the sharded conservative-parallel engine
// on the headroom workload: one waxman-zipf-64 cell (10k hosts, 64 Zipf
// groups, 128-router Waxman) at load 0.8, reduced duration, across shard
// counts. shards=1 is the sequential engine (the fallback path), so the
// sub-benchmark ratios are the intra-run speedup; delivery totals are
// identical across shard counts by the determinism contract. Build time
// is excluded — the benchmark isolates Run, the part sharding targets.
func BenchmarkShardScale(b *testing.B) {
	sc := MustScenario("waxman-zipf-64")
	cfg, err := sc.SessionConfig(sc.Combos[0], 0.8, 1, UseSeed(2), 2*des.Second, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			var delivered uint64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg.Shards = shards
				s := core.NewShardedSession(cfg)
				b.StartTimer()
				r := s.Run()
				delivered = r.Delivered
			}
			b.ReportMetric(float64(delivered), "deliveries")
		})
	}
}

// BenchmarkShardScaleChurn is BenchmarkShardScale on the dynamic-
// membership workload (churn-waxman-16 at full population), exercising
// the quiesce-barrier control-plane path under sharding.
func BenchmarkShardScaleChurn(b *testing.B) {
	sc := MustScenario("churn-waxman-16")
	groups := sc.Groups(1)
	cfg, err := sc.SessionConfig(sc.Combos[0], 0.8, 1, UseSeed(2), 2*des.Second, nil, groups)
	if err != nil {
		b.Fatal(err)
	}
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			var delivered, lost uint64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg.Shards = shards
				s := core.NewShardedSession(cfg)
				b.StartTimer()
				r := s.Run()
				delivered, lost = r.Delivered, r.Lost
			}
			b.ReportMetric(float64(delivered), "deliveries")
			b.ReportMetric(float64(lost), "lost")
		})
	}
}

// BenchmarkScenarioScaleBuild measures structure construction alone at
// the scale benchmark's dimensions: Waxman underlay, 2000-host
// attachment, 16 Zipf member sets, and 16 DSCT trees.
func BenchmarkScenarioScaleBuild(b *testing.B) {
	sc := MustScenario("waxman-zipf-16")
	for i := 0; i < b.N; i++ {
		cfg, err := sc.SessionConfig(sc.Combos[0], 0.8, uint64(i+1), UseSeed(uint64(i+2)),
			des.Second, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		core.NewSession(cfg)
	}
}

// BenchmarkSingleHopRun measures one Simulation I run.
func BenchmarkSingleHopRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		RunSingleHop(SingleHopConfig{Mix: MixVideo, Load: 0.8, Scheme: SchemeSRL,
			Duration: 13 * des.Second, Seed: uint64(i + 1)})
	}
}

// BenchmarkSessionRun measures one reduced multi-group run.
func BenchmarkSessionRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Run(Config{NumHosts: 60, Mix: MixAudio, Load: 0.8, Scheme: SchemeSRL,
			Duration: 5 * des.Second, Seed: uint64(i + 1)})
	}
}

// BenchmarkSessionBuild measures network + tree + host wiring alone.
func BenchmarkSessionBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		core.NewSession(core.Config{NumHosts: 665, Mix: traffic.MixAudio,
			Load: 0.8, Scheme: core.SchemeSRL, Seed: uint64(i + 1)})
	}
}
