# Developer entry points. CI runs the same steps (.github/workflows/ci.yml).

GO ?= go
BENCH_DATE := $(shell date +%F)

.PHONY: all build test race vet fmt check bench bench-json bench-compare scenarios shards snapshot substrate staticcheck fuzz

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race detector over the quick test suite (-short skips the two slowest
# full-sweep tests): the parallel sweep pool and the per-engine isolation
# invariant are exactly the kind of thing -race catches.
race:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

check: fmt vet build test

# Smoke-run every registered scenario at reduced scale (the CLI's
# -scenario all -quick, which iterates the whole registry — including the
# churn and fault-injection scenarios): catches scenario-layer bit-rot in
# seconds. The explicit fault-builtin runs exercise the recovery tables in
# both engines: sequential and sharded (fault events at quiesce barriers).
scenarios:
	$(GO) run ./cmd/wdcsim -scenario all -quick
	$(GO) run ./cmd/wdcsim -scenario outage-waxman-16 -quick -shards 1
	$(GO) run ./cmd/wdcsim -scenario outage-waxman-16 -quick -shards 4
	$(GO) run ./cmd/wdcsim -scenario epoch-churn-waxman-16 -quick -shards 4
	$(GO) run ./cmd/wdcsim -scenario waxman-zipf-512 -duration 0.5 -shards 1
	$(GO) run ./cmd/wdcsim -scenario waxman-zipf-512 -duration 0.5 -shards 8

# Sharded-mode suite, mirroring `make race`: every shard differential and
# determinism test across a shard-count matrix (WDCSIM_SHARDS overrides
# the default of 4 in the tests). Catches partition, lookahead, mailbox-
# merge, and barrier regressions that a single shard count might mask.
shards:
	WDCSIM_SHARDS=2 $(GO) test -run Shard ./...
	WDCSIM_SHARDS=4 $(GO) test -run Shard ./...
	WDCSIM_SHARDS=8 $(GO) test -run Shard ./...
	$(GO) run ./cmd/wdcsim -scenario waxman-zipf-512 -duration 0.5 -shards 4

# Coverage-guided fuzzing of the invariant-heavy corners: the timing
# wheel's cursor-behind merge-insert, the cross-shard mailbox merge
# against its (at, lamport, srcShard, seq) oracle, the overlay graft-point
# selector, and the batch prune/repair path the fault plane drives. 30 s per
# target — long enough to grow a corpus, short enough for a CI side job
# (wired in as non-blocking; run longer locally when touching either
# subsystem).
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzWheelCursorBehind -fuzztime $(FUZZTIME) ./internal/des
	$(GO) test -run '^$$' -fuzz FuzzMailboxDrain -fuzztime $(FUZZTIME) ./internal/des
	$(GO) test -run '^$$' -fuzz FuzzGraftPoint -fuzztime $(FUZZTIME) ./internal/overlay
	$(GO) test -run '^$$' -fuzz FuzzBatchRepair -fuzztime $(FUZZTIME) ./internal/overlay

# Checkpoint/restore differential: for two builtin workloads (static
# scale benchmark, churn benchmark) and both engines, run-to-end must be
# bit-identical to run-to-T/2 → snapshot → restore → run-to-end. This is
# the same contract the core goldens pin, exercised through real scenario
# configs and the CLI.
snapshot:
	$(GO) run ./cmd/wdcsim -scenario waxman-zipf-16 -quick -shards 1 -snapshot-diff
	$(GO) run ./cmd/wdcsim -scenario waxman-zipf-16 -quick -shards 4 -snapshot-diff
	$(GO) run ./cmd/wdcsim -scenario churn-waxman-16 -quick -shards 1 -snapshot-diff
	$(GO) run ./cmd/wdcsim -scenario churn-waxman-16 -quick -shards 4 -snapshot-diff

# Static analysis. Skips with a notice when the binary is missing so the
# target is safe on minimal containers; CI installs staticcheck and runs
# this for real.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
		echo "  (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# Full benchmark pass with allocation stats, human-readable.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# Machine-readable benchmark record for the perf trajectory: one JSON
# object per line (test2json stream) in BENCH_<date>.json. A second run on
# the same day picks the first free BENCH_<date>-N.json instead of
# clobbering the earlier record. Keep these files out of git unless
# intentionally snapshotting a milestone; EXPERIMENTS.md records the
# curated before/after numbers.
bench-json:
	@out=BENCH_$(BENCH_DATE).json; n=1; \
	while [ -e "$$out" ]; do n=$$((n+1)); out=BENCH_$(BENCH_DATE)-$$n.json; done; \
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x -json ./... > "$$out"; \
	echo "wrote $$out"

# Compare two bench-json records per benchmark (old → new ns/op, delta,
# geomean) with the in-tree comparer — no benchstat needed. Defaults to
# the two newest BENCH_*.json; override with OLD=... NEW=...
bench-compare:
	@old="$(OLD)"; new="$(NEW)"; \
	if [ -z "$$old" ] || [ -z "$$new" ]; then \
		set -- $$(ls -t BENCH_*.json 2>/dev/null | head -2); \
		[ -z "$$new" ] && new="$$1"; [ -z "$$old" ] && old="$$2"; \
	fi; \
	if [ -z "$$old" ] || [ -z "$$new" ]; then \
		echo "bench-compare: need two BENCH_*.json records (run make bench-json, or pass OLD=... NEW=...)"; exit 1; fi; \
	$(GO) run ./cmd/benchdiff "$$old" "$$new"

# Substrate compile differentials under the race detector: the parallel
# compiler must be bit-identical to sequential, the blueprint cache must
# key correctly and hand out isolated clones, and a cache-warm session
# must reproduce the cold session's Result exactly.
substrate:
	$(GO) test -race -run 'TestParallelCompileBitIdentical|TestSubstrateCloneIsolation|TestBlueprintCacheKeying|TestCompileChildrenArena|TestHostConnsMatchesNewHost|TestCachedSessionRunsIdentical' ./internal/core
