// Package wdc (worst-case delay control) is the public API of this
// reproduction of Tu, Sreenan & Jia, "Worst-Case Delay Control in
// Multigroup Overlay Networks" (ICPP 2006 / IEEE TPDS 18(10), 2007).
//
// The package re-exports the three layers a downstream user needs:
//
//   - Theory: closed-form results — the (σ, ρ, λ) duty-cycle identities,
//     worst-case delay bounds (Lemma 1, Theorems 1–2, Remarks 1–2), the
//     rate threshold ρ* (Theorems 3–4), improvement ratios (Theorems 5–6),
//     the DSCT height bound (Lemma 2) and multicast bounds (Theorems 7–8).
//   - Engines: RunSingleHop (Simulation I: one regulated general MUX) and
//     Run (Simulation II: a multi-group EMcast network on the 19-router
//     backbone), both deterministic given their seeds.
//   - Experiments: drivers that regenerate every figure and table of the
//     paper's evaluation (Fig4, Fig6, LayerSweep, Fig2Trace, RhoStarTable,
//     ImprovementTable), and the declarative scenario layer (Scenarios,
//     ScenarioSweep) that runs named setups far beyond the paper's —
//     pluggable underlays, partial Zipf membership, heterogeneous uplinks.
//
// Quick start:
//
//	res := wdc.RunSingleHop(wdc.SingleHopConfig{
//		Mix: wdc.MixVideo, Load: 0.8, Scheme: wdc.SchemeSRL, Seed: 1,
//	})
//	fmt.Printf("worst-case delay: %.3fs\n", res.WDB)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record.
package wdc

import (
	"repro/internal/calculus"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/overlay"
	"repro/internal/scenario"
	"repro/internal/traffic"
)

// Re-exported engine types.
type (
	// Scheme selects the traffic-control scheme at every end host.
	Scheme = core.Scheme
	// TreeKind selects DSCT or NICE overlay construction.
	TreeKind = core.TreeKind
	// Workload selects extremal (worst-case-admissible) or VBR flows.
	Workload = core.Workload
	// Mix selects the paper's three traffic patterns.
	Mix = traffic.Mix
	// FlowSpec is a flow's rate and declared (σ, ρ) envelope.
	FlowSpec = core.FlowSpec
	// Config parameterises a multi-group run (Simulation II).
	Config = core.Config
	// Result reports a multi-group run.
	Result = core.Result
	// SingleHopConfig parameterises a Simulation I run.
	SingleHopConfig = core.SingleHopConfig
	// SingleHopResult reports a Simulation I run.
	SingleHopResult = core.SingleHopResult
	// Options tunes an experiment sweep.
	Options = harness.Options
	// Fig4Result is one Fig. 4 panel.
	Fig4Result = harness.Fig4Result
	// Fig6Result is one Fig. 6 panel.
	Fig6Result = harness.Fig6Result
	// LayerSweepResult is one of Tables I–III.
	LayerSweepResult = harness.LayerSweepResult
	// SchemeTree names one Fig. 6 scheme/tree combination.
	SchemeTree = harness.SchemeTree
	// GroupSpec is one group's explicit member set and source.
	GroupSpec = core.GroupSpec
	// SeedOpt is an optional seed whose zero value means "unset".
	SeedOpt = core.SeedOpt
	// Scenario is a declarative experiment setup (see internal/scenario).
	Scenario = scenario.Scenario
	// ScenarioResult is a full scenario sweep's curves.
	ScenarioResult = harness.ScenarioResult
	// MembershipEvent is one dynamic membership change applied by the
	// session control plane (host joins or leaves a group mid-run).
	MembershipEvent = core.MembershipEvent
	// Churn is a scenario's declarative membership-churn model (Poisson
	// arrivals, exponential/Pareto lifetimes).
	Churn = scenario.Churn
	// ReoptConfig parameterises the online tree re-optimization plane:
	// periodic measurement-driven rewires/rebuilds under hysteresis.
	ReoptConfig = core.ReoptConfig
	// Reoptimize is a scenario's declarative re-optimization spec.
	Reoptimize = scenario.Reoptimize
	// ScenarioCombo is one traffic-control series of a scenario (scheme
	// plus tree family or overlay strategy).
	ScenarioCombo = scenario.Combo
	// FaultSpec is one declarative correlated-failure injection in a
	// scenario: a router-domain outage, a backbone partition (with its
	// paired heal), a mass leave, or an epoch transition.
	FaultSpec = scenario.FaultSpec
	// FaultEvent is one compiled fault applied by the session control
	// plane at a fixed simulated time.
	FaultEvent = core.FaultEvent
	// FaultOutcome reports what one fault event did: hosts touched,
	// re-grafts, packets lost, and the measured recovery time.
	FaultOutcome = core.FaultOutcome
)

// Re-exported enum values.
const (
	SchemeCapacityAware = core.SchemeCapacityAware
	SchemeSigmaRho      = core.SchemeSigmaRho
	SchemeSRL           = core.SchemeSRL
	SchemeAdaptive      = core.SchemeAdaptive

	TreeDSCT = core.TreeDSCT
	TreeNICE = core.TreeNICE

	WorkloadExtremal = core.WorkloadExtremal
	WorkloadVBR      = core.WorkloadVBR

	MixAudio  = traffic.MixAudio
	MixVideo  = traffic.MixVideo
	MixHetero = traffic.MixHetero
)

// Engines.

// Run executes one multi-group EMcast run (Simulation II). Set
// cfg.Shards > 1 to execute it as a sharded conservative-parallel
// simulation across that many engines — physics (deliveries, losses,
// worst-case delays) are identical to the sequential engine, so sharding
// is purely a wall-clock lever for big sessions on multi-core hosts.
func Run(cfg Config) Result { return core.Run(cfg) }

// RunSingleHop executes one single-regulated-hop run (Simulation I).
func RunSingleHop(cfg SingleHopConfig) SingleHopResult { return core.RunSingleHop(cfg) }

// Strategies lists the registered overlay tree-construction strategies
// ("dsct", "nice", "spt", "greedy", ...), selectable via Config.Strategy,
// scenario specs, and wdcsim -strategy.
func Strategies() []string { return overlay.StrategyNames() }

// Experiment drivers.

// Fig4 regenerates one panel of Fig. 4 (WDB of the two regulators vs load).
func Fig4(mix Mix, opts Options) Fig4Result { return harness.Fig4(mix, opts) }

// Fig6 regenerates one panel of Fig. 6 (six scheme/tree WDB curves).
func Fig6(mix Mix, opts Options) Fig6Result { return harness.Fig6(mix, opts) }

// LayerSweep regenerates one of Tables I–III (tree layer counts vs load).
func LayerSweep(mix Mix, opts Options) LayerSweepResult { return harness.LayerSweep(mix, opts) }

// QuickOptions returns reduced-scale sweep options that preserve curve
// shapes (120 hosts, 5 loads, short runs).
func QuickOptions(seed uint64) Options { return harness.Quick(seed) }

// Scenario layer.

// UseSeed wraps an explicit seed value (including 0) in a set SeedOpt.
func UseSeed(v uint64) SeedOpt { return core.UseSeed(v) }

// ScenarioSweep runs a declarative scenario over its load grid under the
// parallel sweep pool, one engine per (load, combo) cell.
func ScenarioSweep(sc Scenario, opts Options) (ScenarioResult, error) {
	return harness.ScenarioSweep(sc, opts)
}

// Scenarios lists the registered scenarios in name order (the paper's
// Fig. 4 and Fig. 6 are the entries "paper-fig4" and "paper-fig6").
func Scenarios() []Scenario { return scenario.All() }

// LookupScenario resolves a registered scenario by name.
func LookupScenario(name string) (Scenario, error) { return scenario.Lookup(name) }

// MustScenario is LookupScenario for static names (benchmarks, examples).
func MustScenario(name string) Scenario { return scenario.MustLookup(name) }

// ParseScenario decodes and validates a scenario from JSON.
func ParseScenario(data []byte) (Scenario, error) { return scenario.Parse(data) }

// PaperLoads is the full 13-point load grid of the paper's figures.
func PaperLoads() []float64 { return append([]float64(nil), harness.PaperLoads...) }

// Theory exposes the paper's closed-form results.
type Theory struct{}

// Lambda returns λ = 1/(1−ρ) (Eq. 1; ρ normalised to capacity 1).
func (Theory) Lambda(rho float64) float64 { return calculus.Lambda(rho) }

// WorkPeriod returns W = σ/(1−ρ) seconds (normalised units).
func (Theory) WorkPeriod(sigma, rho float64) float64 { return calculus.WorkPeriod(sigma, rho) }

// Vacation returns V = σ/ρ seconds.
func (Theory) Vacation(sigma, rho float64) float64 { return calculus.Vacation(sigma, rho) }

// RhoStarHomog returns the Theorem 4 rate threshold for K homogeneous flows.
func (Theory) RhoStarHomog(k int) float64 { return calculus.RhoStarHomog(k) }

// RhoStarHetero returns the Theorem 3 rate threshold for K heterogeneous flows.
func (Theory) RhoStarHetero(k int) float64 { return calculus.RhoStarHetero(k) }

// DelayBoundSigmaRho returns Remark 1's MUX bound Σσᵢ/(1−Σρᵢ).
func (Theory) DelayBoundSigmaRho(sigmas, rhos []float64) float64 {
	return calculus.DgHetero(sigmas, rhos)
}

// DelayBoundSRL returns Theorem 1's MUX bound for (σ*, ρ, λ) regulation.
func (Theory) DelayBoundSRL(sigmas, rhos []float64) float64 {
	return calculus.DhatHetero(sigmas, rhos)
}

// DSCTHeightBound returns Lemma 2's height bound for an n-member group.
func (Theory) DSCTHeightBound(n, k int) int { return calculus.DSCTHeightBoundMax(n, k) }

// MulticastBoundSigmaRho returns Remark 2's tree bound.
func (Theory) MulticastBoundSigmaRho(height int, sigmas, rhos []float64) float64 {
	return calculus.MulticastDgHetero(height, sigmas, rhos)
}

// MulticastBoundSRL returns Theorem 7's tree bound.
func (Theory) MulticastBoundSRL(height int, sigmas, rhos []float64) float64 {
	return calculus.MulticastDhatHetero(height, sigmas, rhos)
}
